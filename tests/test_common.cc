/**
 * @file
 * Unit tests for the common module: bit utilities, RNG determinism,
 * and the statistics registry.
 */

#include <gtest/gtest.h>

#include "common/bitutil.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace pei
{
namespace
{

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
}

TEST(BitUtil, Log2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(1024), 10u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(BitUtil, Bits)
{
    EXPECT_EQ(bits(0xDEADBEEF, 0, 8), 0xEFu);
    EXPECT_EQ(bits(0xDEADBEEF, 8, 8), 0xBEu);
    EXPECT_EQ(bits(0xDEADBEEF, 16, 16), 0xDEADu);
}

TEST(BitUtil, FoldedXorStaysInWidth)
{
    for (std::uint64_t v :
         {0ULL, 1ULL, 0xFFFFULL, 0x123456789ABCDEFULL, ~0ULL}) {
        EXPECT_LT(foldedXor(v, 10), 1024u) << v;
        EXPECT_LT(foldedXor(v, 11), 2048u) << v;
    }
}

TEST(BitUtil, FoldedXorMixesHighBits)
{
    // Addresses differing only in high bits must fold differently
    // (this is what makes tag-less directory aliasing rare).
    const std::uint64_t a = 0x1000;
    const std::uint64_t b = 0x1000 | (1ULL << 40);
    EXPECT_NE(foldedXor(a, 11), foldedXor(b, 11));
}

TEST(BitUtil, BlockHelpers)
{
    EXPECT_EQ(blockAlign(0x12345), 0x12340u);
    EXPECT_EQ(blockOffset(0x12345), 5u);
    EXPECT_TRUE(fitsInBlock(0x12340, 64));
    EXPECT_FALSE(fitsInBlock(0x12341, 64));
    EXPECT_TRUE(fitsInBlock(0x1237F, 1));
    EXPECT_FALSE(fitsInBlock(0x1237F, 2));
    EXPECT_FALSE(fitsInBlock(0x12340, 0));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_EQ(same, 0);
}

TEST(Rng, BelowInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, UniformCoversRange)
{
    Rng rng(9);
    double lo = 1.0, hi = 0.0;
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        lo = std::min(lo, u);
        hi = std::max(hi, u);
    }
    EXPECT_LT(lo, 0.01);
    EXPECT_GT(hi, 0.99);
}

TEST(Zipf, SkewsTowardsHead)
{
    ZipfSampler z(1000, 1.0, 3);
    std::uint64_t head = 0, total = 100000;
    for (std::uint64_t i = 0; i < total; ++i)
        head += (z.sample() < 10);
    // With s=1.0 over 1000 items, the top-10 get ~39% of samples.
    EXPECT_GT(head, total / 4);
    EXPECT_LT(head, total / 2);
}

TEST(Stats, RegisterAndSnapshot)
{
    StatRegistry reg;
    Counter a, b;
    reg.add("x.a", &a);
    reg.add("x.b", &b);
    a += 5;
    ++b;
    EXPECT_EQ(reg.get("x.a"), 5u);
    EXPECT_EQ(reg.get("x.b"), 1u);
    EXPECT_EQ(reg.sumByPrefix("x."), 6u);
    auto snap = reg.snapshot();
    EXPECT_EQ(snap.at("x.a"), 5u);
    reg.resetAll();
    EXPECT_EQ(reg.get("x.a"), 0u);
}

TEST(Stats, PrefixSumIsExactPrefix)
{
    StatRegistry reg;
    Counter a, b, c;
    reg.add("vault1.reads", &a);
    reg.add("vault10.reads", &b);
    reg.add("w.reads", &c);
    a += 1;
    b += 2;
    c += 4;
    EXPECT_EQ(reg.sumByPrefix("vault1."), 1u);
    EXPECT_EQ(reg.sumByPrefix("vault1"), 3u);
    EXPECT_EQ(reg.sumByPrefix(""), 7u);
}

TEST(Histogram, BucketsAreLog2Ranges)
{
    Histogram h;
    h.record(0); // bucket 0
    h.record(1); // bucket 1
    h.record(2); // bucket 2
    h.record(3); // bucket 2
    h.record(4); // bucket 3
    h.record(1023);
    h.record(1024);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.sum(), 0u + 1 + 2 + 3 + 4 + 1023 + 1024);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1024u);
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 2u);
    EXPECT_EQ(h.bucketCount(3), 1u);
    EXPECT_EQ(h.bucketCount(10), 1u); // 1023 in [512, 1023]
    EXPECT_EQ(h.bucketCount(11), 1u); // 1024 in [1024, 2047]
    EXPECT_EQ(Histogram::bucketLow(11), 1024u);
    EXPECT_EQ(Histogram::bucketHigh(11), 2047u);
}

TEST(Histogram, ExtremesLandInTheLastBucket)
{
    Histogram h;
    h.record(~0ULL);
    EXPECT_EQ(h.bucketCount(64), 1u);
    EXPECT_EQ(h.max(), ~0ULL);
    EXPECT_EQ(Histogram::bucketHigh(64), ~0ULL);
}

TEST(Histogram, MeanMinMaxAndReset)
{
    Histogram h;
    EXPECT_EQ(h.min(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    h.record(10);
    h.record(30);
    EXPECT_DOUBLE_EQ(h.mean(), 20.0);
    EXPECT_EQ(h.min(), 10u);
    EXPECT_EQ(h.max(), 30u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, ApproxPercentileWalksBuckets)
{
    Histogram h;
    for (int i = 0; i < 99; ++i)
        h.record(4); // bucket 3, upper bound 7
    h.record(1000); // bucket 10 (clamped to the observed max)
    EXPECT_EQ(h.approxPercentile(0.5), 7u);
    EXPECT_EQ(h.approxPercentile(1.0), 1000u);
}

TEST(Stats, HistogramRegistrationAndReset)
{
    StatRegistry reg;
    Histogram h;
    reg.add("pmu.lat_ticks", &h);
    ASSERT_TRUE(reg.hasHistogram("pmu.lat_ticks"));
    EXPECT_FALSE(reg.hasHistogram("pmu.other"));
    h.record(5);
    EXPECT_EQ(reg.histogram("pmu.lat_ticks").count(), 1u);
    reg.resetAll();
    EXPECT_EQ(reg.histogram("pmu.lat_ticks").count(), 0u);
}

TEST(Stats, JsonExportIsWellFormed)
{
    StatRegistry reg;
    Counter c;
    Histogram h;
    reg.add("x.events", &c);
    reg.add("x.lat_ticks", &h);
    c += 3;
    h.record(0);
    h.record(5);

    const std::string counters = reg.countersJson();
    EXPECT_EQ(counters, "{\"x.events\":3}");

    const std::string hists = reg.histogramsJson();
    EXPECT_NE(hists.find("\"x.lat_ticks\""), std::string::npos);
    EXPECT_NE(hists.find("\"count\":2"), std::string::npos);
    EXPECT_NE(hists.find("\"sum\":5"), std::string::npos);
    EXPECT_NE(hists.find("[0,0,1]"), std::string::npos); // bucket 0
    EXPECT_NE(hists.find("[4,7,1]"), std::string::npos); // bucket 3

    const std::string all = reg.toJson();
    EXPECT_EQ(all.find("{\"counters\":{"), 0u);
    EXPECT_NE(all.find("\"histograms\":{"), std::string::npos);
}

TEST(Stats, EmptyHistogramStillExported)
{
    // HostOnly runs must still emit all three PEI latency histograms;
    // empty ones export with count 0 and an empty bucket list.
    StatRegistry reg;
    Histogram h;
    reg.add("pmu.pei_latency_mem_ticks", &h);
    const std::string hists = reg.histogramsJson();
    EXPECT_NE(hists.find("\"pmu.pei_latency_mem_ticks\""),
              std::string::npos);
    EXPECT_NE(hists.find("\"count\":0"), std::string::npos);
    EXPECT_NE(hists.find("\"buckets\":[]"), std::string::npos);
}

TEST(Stats, AuditReportsViolationsWithValues)
{
    StatRegistry reg;
    Counter a, b;
    reg.add("y.ins", &a);
    reg.add("y.outs", &b);
    reg.addInvariant("y.ins == y.outs", [&a, &b] {
        if (a.value() == b.value())
            return std::string();
        return "ins=" + std::to_string(a.value()) +
               " != outs=" + std::to_string(b.value());
    });
    EXPECT_TRUE(reg.audit().empty());
    a += 2;
    ++b;
    const auto violations = reg.audit();
    ASSERT_EQ(violations.size(), 1u);
    EXPECT_NE(violations[0].find("y.ins == y.outs"), std::string::npos);
    EXPECT_NE(violations[0].find("ins=2"), std::string::npos);
    ++b;
    EXPECT_TRUE(reg.audit().empty());
}

TEST(Stats, PercentileInterpolates)
{
    // Samples 1..8 land in log2 buckets 1:[1,2) 2:[2,4) 3:[4,8)
    // 4:[8,16) with counts 1/2/4/1.  percentile() targets fractional
    // rank p*(count-1) and spreads each bucket's samples uniformly
    // over [bucketLow, bucketHigh+1): p50 -> rank 3.5, bucket 3 holds
    // ranks 3..6, so 4 + 4*(0.5/4) = 4.5; p95 -> rank 6.65, so
    // 4 + 4*(3.65/4) = 7.65.
    Histogram h;
    for (std::uint64_t v = 1; v <= 8; ++v)
        h.record(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 4.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.95), 7.65);
    // The extremes clamp to the recorded min/max.
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 8.0);
}

TEST(Stats, PercentileClampsToObservedRange)
{
    // 0..99 once each: p50 -> rank 49.5 inside bucket [32,64) (ranks
    // 32..63), 32 + 32*(17.5/32) = 49.5 exactly.  p99 -> rank 98.01
    // inside [64,128), whose uniform spread would extrapolate to
    // ~124 — the clamp pins it to the observed max instead.
    Histogram h;
    for (std::uint64_t v = 0; v < 100; ++v)
        h.record(v);
    EXPECT_DOUBLE_EQ(h.percentile(0.50), 49.5);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 99.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.25), 24.75);
}

TEST(Stats, PercentileEdgeCases)
{
    Histogram empty;
    EXPECT_DOUBLE_EQ(empty.percentile(0.5), 0.0);

    Histogram one;
    one.record(42);
    EXPECT_DOUBLE_EQ(one.percentile(0.0), 42.0);
    EXPECT_DOUBLE_EQ(one.percentile(0.5), 42.0);
    EXPECT_DOUBLE_EQ(one.percentile(1.0), 42.0);

    // Out-of-range p is clamped, not an error.
    EXPECT_DOUBLE_EQ(one.percentile(-1.0), 42.0);
    EXPECT_DOUBLE_EQ(one.percentile(2.0), 42.0);
}

TEST(Stats, PercentileAllSamplesInOneBucket)
{
    // Identical samples all land in one log2 bucket ([64,128) here).
    // The uniform in-bucket spread would report values anywhere in
    // that range; the observed-min/max clamp must collapse every
    // percentile to the one recorded value.
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.record(100);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.99), 100.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 100.0);
}

TEST(Stats, HistogramJsonCarriesPercentiles)
{
    StatRegistry reg;
    Histogram h;
    reg.add("x.lat", &h);
    for (std::uint64_t v = 1; v <= 8; ++v)
        h.record(v);
    const std::string hists = reg.histogramsJson();
    EXPECT_NE(hists.find("\"p50\":4.5"), std::string::npos);
    EXPECT_NE(hists.find("\"p95\":7.65"), std::string::npos);
    EXPECT_NE(hists.find("\"p99\":"), std::string::npos);
}

TEST(Types, Conversions)
{
    EXPECT_EQ(nsToTicks(1.0), 4u);
    EXPECT_EQ(nsToTicks(13.75), 55u);
    EXPECT_EQ(cyclesToTicks(10, 4000), 10u);
    EXPECT_EQ(cyclesToTicks(10, 2000), 20u);
    EXPECT_EQ(1_KiB, 1024u);
    EXPECT_EQ(2_MiB, 2u * 1024 * 1024);
}

} // namespace
} // namespace pei
