/**
 * @file
 * Unit tests for the memory substrate: virtual memory and TLB,
 * physical address mapping, DRAM vault timing (FR-FCFS, row
 * buffers, TSV serialization), and the HMC link model (bandwidth,
 * flit accounting, EMA counters, PIM packet routing).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "mem/addr_map.hh"
#include "mem/dram.hh"
#include "mem/hmc.hh"
#include "mem/vmem.hh"

namespace pei
{
namespace
{

// ------------------------------------------------------- VirtualMemory

TEST(VirtualMemory, AllocTranslateRoundTrip)
{
    VirtualMemory vm(64 << 20);
    const Addr a = vm.alloc(10000);
    const Addr b = vm.alloc(10000);
    EXPECT_NE(a, b);
    // Different vaddrs map to different paddrs; offsets preserved.
    EXPECT_NE(vm.translate(a), vm.translate(b));
    EXPECT_EQ(vm.translate(a + 123) & 0xFFF, (vm.translate(a) + 123) & 0xFFF);
}

TEST(VirtualMemory, FunctionalReadWrite)
{
    VirtualMemory vm(64 << 20);
    const Addr a = vm.alloc(4096 * 3);
    vm.write<std::uint64_t>(a + 4090, 0xDEADBEEFCAFEF00DULL); // crosses page
    EXPECT_EQ(vm.read<std::uint64_t>(a + 4090), 0xDEADBEEFCAFEF00DULL);

    std::vector<std::uint8_t> buf(8192, 0xAB);
    vm.writeBytes(a, buf.data(), buf.size());
    std::vector<std::uint8_t> out(8192, 0);
    vm.readBytes(a, out.data(), out.size());
    EXPECT_EQ(buf, out);
}

TEST(VirtualMemory, PhysicalAccessMatchesVirtual)
{
    VirtualMemory vm(64 << 20);
    const Addr a = vm.alloc(4096);
    vm.write<std::uint32_t>(a + 100, 42);
    EXPECT_EQ(vm.readPhys<std::uint32_t>(vm.translate(a + 100)), 42u);
    vm.writePhys<std::uint32_t>(vm.translate(a + 100), 43);
    EXPECT_EQ(vm.read<std::uint32_t>(a + 100), 43u);
}

TEST(VirtualMemory, ZeroInitialized)
{
    VirtualMemory vm(64 << 20);
    const Addr a = vm.alloc(1 << 16);
    for (Addr off = 0; off < (1 << 16); off += 4096)
        EXPECT_EQ(vm.read<std::uint64_t>(a + off), 0u);
}

TEST(Tlb, HitsAfterFirstAccessAndEvictsLru)
{
    Tlb tlb(2, 100);
    EXPECT_EQ(tlb.access(0x1000), 100u); // miss
    EXPECT_EQ(tlb.access(0x1008), 0u);   // same page: hit
    EXPECT_EQ(tlb.access(0x2000), 100u); // miss
    EXPECT_EQ(tlb.access(0x1000), 0u);   // still resident
    EXPECT_EQ(tlb.access(0x3000), 100u); // evicts 0x2000 (LRU)
    EXPECT_EQ(tlb.access(0x2000), 100u); // miss again
    EXPECT_EQ(tlb.misses(), 4u);
}

// ------------------------------------------------------------ AddrMap

TEST(AddrMap, DecodeCoversAllComponents)
{
    AddrMap map(8, 16, 16, 8192);
    EXPECT_EQ(map.totalVaults(), 128u);
    // Consecutive blocks land on consecutive cubes first.
    const MemLoc l0 = map.decode(0);
    const MemLoc l1 = map.decode(64);
    EXPECT_NE(l0.cube, l1.cube);
    // All fields within range over random addresses.
    Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const MemLoc loc = map.decode(rng.below(1ULL << 35));
        EXPECT_LT(loc.cube, 8u);
        EXPECT_LT(loc.vault, 16u);
        EXPECT_LT(loc.bank, 16u);
        EXPECT_EQ(loc.globalVault, loc.cube * 16 + loc.vault);
    }
}

TEST(AddrMap, MaxAddressDecodesInBounds)
{
    // 64 MB over 1x4 vaults, 16 banks, 8 KB rows: the last backed
    // block must decode cleanly into the final row stripe.
    const std::uint64_t phys = 64ULL << 20;
    AddrMap map(1, 4, 16, 8192, phys);
    ASSERT_GT(map.rowLimit(), 0u);
    const MemLoc last = map.decode(phys - block_size);
    EXPECT_LT(last.row, map.rowLimit());
    // An unbounded map (phys_bytes = 0) never rejects an address.
    AddrMap unbounded(1, 4, 16, 8192);
    EXPECT_EQ(unbounded.rowLimit(), 0u);
    (void)unbounded.decode(~0ULL & ~63ULL);
}

#ifndef NDEBUG
TEST(AddrMapDeathTest, DecodePastEndOfMemoryPanics)
{
    const std::uint64_t phys = 64ULL << 20;
    AddrMap map(1, 4, 16, 8192, phys);
    EXPECT_DEATH((void)map.decode(phys),
                 "decodes past the end of memory");
}
#endif

TEST(AddrMap, BlocksSpreadAcrossVaults)
{
    AddrMap map(1, 16, 16, 8192);
    std::vector<int> counts(16, 0);
    for (Addr a = 0; a < 16 * 64 * 64; a += 64)
        ++counts[map.decode(a).vault];
    for (int c : counts)
        EXPECT_EQ(c, 64);
}

// --------------------------------------------------------------- DRAM

struct VaultFixture : public ::testing::Test
{
    VaultFixture() : map(1, 1, 16, 8192), vault(eq, cfg, map, 0, stats)
    {}

    Ticks
    doAccess(Addr paddr, bool write)
    {
        const Tick start = eq.now();
        bool done = false;
        vault.accessBlock(paddr, write, [&done] { done = true; });
        while (!done && eq.runOne()) {}
        EXPECT_TRUE(done);
        return eq.now() - start;
    }

    StatRegistry stats;
    EventQueue eq;
    AddrMap map;
    DramConfig cfg;
    Vault vault;
};

// Address helpers: with 16 banks low-interleaved, blocks with equal
// (blk % 16) share a bank; rows change every 128 same-bank blocks.
// 0x0 and 0x400 (blk 16): bank 0, row 0.  0x4000000: bank 0, far row.

TEST_F(VaultFixture, RowHitIsFasterThanRowMiss)
{
    const Ticks first = doAccess(0x0, false);  // empty row: tRCD + tCL
    const Ticks hit = doAccess(0x400, false);  // same bank+row: tCL
    // Far-apart row in the same bank: tRP + tRCD + tCL.
    const Ticks conflict = doAccess(0x4000000, false);
    EXPECT_LT(hit, first);
    EXPECT_LT(first, conflict);
    EXPECT_EQ(vault.rowHits(), 1u);
    EXPECT_EQ(vault.activates(), 2u);
}

TEST_F(VaultFixture, ExactTimingMatchesParameters)
{
    // Empty bank: tRCD (55) + tCL (55) + TSV burst (64 B at 16 GB/s
    // = 4 ns = 16 ticks).
    EXPECT_EQ(doAccess(0x0, false), 55u + 55u + 16u);
    // Row hit: tCL + burst.
    EXPECT_EQ(doAccess(0x400, false), 55u + 16u);
}

TEST_F(VaultFixture, BankParallelismOverlapsAccesses)
{
    // Two accesses to different banks overlap.
    int done = 0;
    const Tick start = eq.now();
    vault.accessBlock(0x0, false, [&done] { ++done; });
    vault.accessBlock(0x40, false, [&done] { ++done; }); // bank 1
    while (done < 2 && eq.runOne()) {}
    const Ticks both = eq.now() - start;
    // Overlapped: latency + one extra TSV burst, far less than 2x.
    EXPECT_LT(both, 2 * (55 + 55 + 16));
}

TEST_F(VaultFixture, FrFcfsPrefersRowHits)
{
    // First access opens row 0 of bank 0 and occupies the bank;
    // while it runs, queue a row-conflict request and then a
    // row-hit request.  FR-FCFS must service the younger hit first.
    std::vector<int> order;
    vault.accessBlock(0x0, false, [&order] { order.push_back(0); });
    vault.accessBlock(0x4000000, false,
                      [&order] { order.push_back(1); });
    vault.accessBlock(0x400, false, [&order] { order.push_back(2); });
    while (eq.runOne()) {}
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[1], 2); // the row hit overtakes the conflict
    EXPECT_EQ(order[2], 1);
}

TEST_F(VaultFixture, HighLoadDrainsCompletely)
{
    Rng rng(2);
    int done = 0;
    for (int i = 0; i < 2000; ++i)
        vault.accessBlock(64 * rng.below(1 << 20), rng.chance(0.3),
                          [&done] { ++done; });
    while (eq.runOne()) {}
    EXPECT_EQ(done, 2000);
    EXPECT_EQ(vault.reads() + vault.writes(), 2000u);
}

// ---------------------------------------------------------------- HMC

struct HmcFixture : public ::testing::Test
{
    HmcFixture() : map(2, 4, 16, 8192)
    {
        cfg.num_cubes = 2;
        cfg.vaults_per_cube = 4;
        hmc = std::make_unique<HmcBackend>(sq, cfg, stats);
    }

    StatRegistry stats;
    ShardedQueue sq; // single shard: the sequential engine
    EventQueue &eq = sq.host();
    AddrMap map;
    HmcConfig cfg;
    std::unique_ptr<HmcBackend> hmc;
};

TEST_F(HmcFixture, ReadCostsOneRequestFiveResponseFlits)
{
    bool done = false;
    hmc->readBlock(0x1000, [&done] { done = true; });
    while (eq.runOne()) {}
    EXPECT_TRUE(done);
    EXPECT_EQ(stats.get("link0.flits"), 1u);  // 16 B request
    EXPECT_EQ(stats.get("link1.flits"), 5u);  // 80 B response
}

TEST_F(HmcFixture, WriteCostsFiveRequestFlitsNoResponse)
{
    bool done = false;
    hmc->writeBlock(0x1000, [&done] { done = true; });
    while (eq.runOne()) {}
    EXPECT_TRUE(done);
    EXPECT_EQ(stats.get("link0.flits"), 5u); // 80 B request
    EXPECT_EQ(stats.get("link1.flits"), 0u); // posted
}

TEST_F(HmcFixture, LinkSerializationBoundsThroughput)
{
    // 100 reads: response link must carry 100 x 80 B at 40 GB/s
    // (10 B/tick) => at least 800 ticks.
    int done = 0;
    for (int i = 0; i < 100; ++i)
        hmc->readBlock(64 * i * 977, [&done] { ++done; });
    while (eq.runOne()) {}
    EXPECT_EQ(done, 100);
    EXPECT_GE(eq.now(), 800u);
}

class EchoPim : public PimHandler
{
  public:
    void
    handle(PimPacket pkt, Respond respond) override
    {
        ++calls;
        respond(std::move(pkt));
    }
    int calls = 0;
};

TEST_F(HmcFixture, PimPacketsRouteToOwningVaultHandler)
{
    std::vector<EchoPim> handlers(hmc->totalVaults());
    for (unsigned v = 0; v < hmc->totalVaults(); ++v)
        hmc->attachPimHandler(v, &handlers[v]);

    Rng rng(4);
    int responses = 0;
    for (int i = 0; i < 200; ++i) {
        PimPacket pkt;
        pkt.op = 0;
        pkt.paddr = 64 * rng.below(1 << 20);
        pkt.input_size = 8;
        pkt.output_size = 8;
        const unsigned expect = map.decode(pkt.paddr).globalVault;
        const int before = handlers[expect].calls;
        hmc->sendPim(pkt, [&responses](PimPacket) { ++responses; });
        while (eq.runOne()) {}
        EXPECT_EQ(handlers[expect].calls, before + 1);
    }
    EXPECT_EQ(responses, 200);
}

TEST_F(HmcFixture, WriterPeiAckConsumesNoResponseBandwidth)
{
    EchoPim handler;
    for (unsigned v = 0; v < hmc->totalVaults(); ++v)
        hmc->attachPimHandler(v, &handler);
    PimPacket pkt;
    pkt.paddr = 0x40;
    pkt.input_size = 8;
    pkt.output_size = 0; // pure writer: posted ack
    bool done = false;
    hmc->sendPim(pkt, [&done](PimPacket) { done = true; });
    while (eq.runOne()) {}
    EXPECT_TRUE(done);
    EXPECT_EQ(stats.get("link1.flits"), 0u);
}

TEST(EmaCounter, HalvesEveryPeriod)
{
    EmaCounter ema(1000);
    ema.add(64, 0);
    EXPECT_DOUBLE_EQ(ema.value(0), 64.0);
    EXPECT_DOUBLE_EQ(ema.value(1000), 32.0);
    EXPECT_DOUBLE_EQ(ema.value(3000), 8.0);
    ema.add(8, 3000);
    EXPECT_DOUBLE_EQ(ema.value(3000), 16.0);
    EXPECT_DOUBLE_EQ(ema.value(4000), 8.0);
}

TEST(EmaCounter, ModerateGapMatchesRepeatedHalving)
{
    EmaCounter ema(1000);
    ema.add(64, 0);
    EXPECT_DOUBLE_EQ(ema.value(10000), 64.0 / 1024.0);
}

TEST(EmaCounter, LongIdleGapDecaysInConstantTime)
{
    // A multi-trillion-period idle gap: the closed-form decay must
    // evaluate instantly (the per-period halving loop would not
    // return within the lifetime of the test) and clamp to zero.
    EmaCounter ema(1000);
    ema.add(1u << 30, 0);
    const Tick far_future = 30'000'000'000'000'000ULL;
    EXPECT_DOUBLE_EQ(ema.value(far_future), 0.0);
    // The counter keeps working after the gap.
    ema.add(64, far_future);
    EXPECT_DOUBLE_EQ(ema.value(far_future), 64.0);
    EXPECT_DOUBLE_EQ(ema.value(far_future + 1000), 32.0);
}

TEST(EmaCounter, TinyResidueClampsToZero)
{
    // 2^-50 after 60 halvings of 1024 is below the 1e-12 floor; the
    // clamp keeps denormals out of the hot dispatch path.
    EmaCounter ema(1000);
    ema.add(1024, 0);
    EXPECT_DOUBLE_EQ(ema.value(60000), 0.0);
}

} // namespace
} // namespace pei
