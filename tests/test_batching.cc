/**
 * @file
 * Batched PEI dispatch: PMU coalescing windows, vault-side PCU issue
 * queues, and the multi-block gather/scatter ops.
 *
 * Directed scenarios with hand-computed expectations:
 *  - a coalesced 4-PEI train shares one compound header (2 request
 *    flits) where 4 singleton dispatches pay 4;
 *  - a partial window flushes on the window timer;
 *  - a depth-1 issue queue backpressures the window (batch stalls);
 *  - --pei-batch=1 is byte-identical to the default pipeline;
 *  - gather/scatter produce the same memory image on all three
 *    backends (hmc / ddr / ideal) and fall back to host execution
 *    when a block-strided run spans vaults;
 *  - the energy model charges a train by its actual link flits.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "energy/energy_model.hh"
#include "fixture.hh"
#include "pim/pei_op.hh"
#include "runtime/runtime.hh"

namespace pei
{
namespace
{

/** Byte address of word @p w inside block @p b of @p base. */
Addr
wordAddr(Addr base, unsigned b, unsigned w)
{
    return base + b * block_size + w * 8;
}

// ------------------------------------------------- coalescing window

/**
 * 4 async inc64 PEIs to 4 distinct blocks of the same vault (tiny
 * config: 4 global vaults, so a 4-block stride keeps the vault bits
 * constant), then drain.
 */
Task
sameVaultIncKernel(Ctx &ctx, Addr base, unsigned n)
{
    constexpr unsigned vaults = 4;
    for (unsigned i = 0; i < n; ++i)
        co_await ctx.inc64(base + i * vaults * block_size);
    co_await ctx.drain();
}

/** Run @p n same-vault inc64s under the given batch/queue config. */
std::map<std::string, std::uint64_t>
runSameVaultIncs(unsigned n, unsigned pei_batch, unsigned queue_depth,
                 Tick *end_ticks = nullptr)
{
    SystemConfig cfg = fixture::tinyConfig(ExecMode::PimOnly);
    cfg.pim.pei_batch = pei_batch;
    cfg.pim.pcu.issue_queue_depth = queue_depth;
    System sys(cfg);
    Runtime rt(sys);
    const Addr base = rt.alloc(16 * block_size);
    for (unsigned i = 0; i < 16; ++i)
        sys.memory().write<std::uint64_t>(base + i * block_size, 0);

    rt.spawn(0, [&](Ctx &ctx) { return sameVaultIncKernel(ctx, base, n); });
    rt.run();

    for (unsigned i = 0; i < n; ++i) {
        EXPECT_EQ(sys.memory().read<std::uint64_t>(
                      base + i * 4 * block_size),
                  1u)
            << "inc64 #" << i << " lost";
    }
    EXPECT_TRUE(sys.stats().audit().empty());
    if (end_ticks)
        *end_ticks = sys.eventQueue().now();
    return sys.stats().snapshot();
}

TEST(BatchingWindow, CoalescedTrainSharesOneHeader)
{
    const auto single = runSameVaultIncs(4, 1, 0);
    const auto batched = runSameVaultIncs(4, 4, 0);

    // The whole window drains as one train carrying all 4 PEIs.
    EXPECT_EQ(batched.at("pmu.pei_trains"), 1u);
    EXPECT_EQ(batched.at("pmu.batched_peis"), 4u);
    EXPECT_EQ(batched.at("pmu.window_singletons"), 0u);
    EXPECT_EQ(batched.at("net.trains.req"), 1u);
    EXPECT_EQ(batched.at("net.trains.peis"), 4u);
    EXPECT_EQ(single.count("pmu.pei_trains"), 0u); // batch off: no stats

    // Hand-computed request flits (16 B flits): four singleton inc64
    // packets are 8 B headers -> 1 flit each = 4 flits; one train is
    // 8 B compound header + 4 x 4 B sub-headers = 24 B -> 2 flits.
    // Demand traffic is identical across the two runs, so the delta
    // isolates the PEI dispatch cost.
    EXPECT_EQ(single.at("net.req.flits") - batched.at("net.req.flits"),
              2u);
}

TEST(BatchingWindow, PartialWindowFlushesOnTimer)
{
    // 3 PEIs never fill a batch-8 window: only the 256-tick window
    // timer can flush them.
    Tick end = 0;
    const auto stats = runSameVaultIncs(3, 8, 0, &end);
    EXPECT_EQ(stats.at("pmu.pei_trains"), 1u);
    EXPECT_EQ(stats.at("pmu.batched_peis"), 3u);
    EXPECT_GE(end, 256u); // the run waited for the timer
}

TEST(BatchingWindow, IssueQueueBackpressuresWindow)
{
    // Depth-1 vault credit: the first flush puts one packet in
    // flight, the rest of the window must stall until it retires.
    const auto stats = runSameVaultIncs(6, 2, 1);
    EXPECT_GE(stats.at("pmu.batch_stalls"), 1u);
}

// ---------------------------------------------- batch=1 byte-identity

/** A mixed PEI kernel: inc64, fadd, min64 on distinct blocks. */
Task
mixedKernel(Ctx &ctx, Addr base)
{
    co_await ctx.inc64(base);
    co_await ctx.fadd(base + block_size, 1.5);
    co_await ctx.min64(base + 2 * block_size, 7);
    co_await ctx.load(base + 3 * block_size);
    co_await ctx.drain();
    co_await ctx.pfence();
}

std::map<std::string, std::uint64_t>
runMixed(unsigned pei_batch, Ticks window_ticks, Tick *end_ticks)
{
    SystemConfig cfg = fixture::tinyConfig(ExecMode::LocalityAware);
    cfg.pim.pei_batch = pei_batch;
    cfg.pim.batch_window_ticks = window_ticks;
    System sys(cfg);
    Runtime rt(sys);
    const Addr base = rt.alloc(4 * block_size);
    for (unsigned i = 0; i < 4; ++i)
        sys.memory().write<std::uint64_t>(base + i * block_size, 100);
    rt.spawn(0, [&](Ctx &ctx) { return mixedKernel(ctx, base); });
    rt.run();
    EXPECT_TRUE(sys.stats().audit().empty());
    *end_ticks = sys.eventQueue().now();
    return sys.stats().snapshot();
}

TEST(BatchingWindow, BatchOneIsByteIdenticalToDefault)
{
    // pei_batch=1 bypasses the window entirely: every counter and
    // the final tick must match the default pipeline exactly, even
    // with a non-default window timeout configured.
    Tick end_default = 0, end_batch1 = 0;
    const auto def = runMixed(1, 0, &end_default);
    const auto batch1 = runMixed(1, 77, &end_batch1);
    EXPECT_EQ(end_default, end_batch1);
    EXPECT_EQ(def, batch1);
}

// ------------------------------------------- gather/scatter PEI ops

/**
 * The directed gather/scatter scenario: an in-block scatter-add, an
 * in-block gather (checked against the seeded image), and a
 * block-strided scatter whose blocks span vaults on real geometry.
 */
Task
gatherScatterKernel(Ctx &ctx, Addr base, bool *gather_ok)
{
    // words 0..3 of block 0 += 7
    const ScatterIn s1{8, 4, 7};
    co_await ctx.pei(PeiOpcode::Scatter, base, &s1, sizeof(s1));

    // gather words 0..7 of block 1 (untouched by the scatters)
    const GatherIn g1{8, 8};
    const PimPacket done =
        co_await ctx.pei(PeiOpcode::Gather, base + block_size, &g1,
                         sizeof(g1));
    *gather_ok = done.output_size == 64;
    for (unsigned w = 0; *gather_ok && w < 8; ++w) {
        std::uint64_t v;
        std::memcpy(&v, done.output.data() + w * 8, 8);
        *gather_ok = v == 100 + w;
    }

    // word 0 of blocks 2 and 3 += 3 (block stride: spans vaults on
    // the block-interleaved map -> host fallback on PIM backends)
    const ScatterIn s2{block_size, 2, 3};
    co_await ctx.pei(PeiOpcode::Scatter, base + 2 * block_size, &s2,
                     sizeof(s2));
    co_await ctx.pfence();
}

/** Runs the scenario on @p backend; returns the final memory words. */
std::vector<std::uint64_t>
runGatherScatter(const char *backend, ExecMode mode,
                 std::uint64_t *span_host = nullptr)
{
    SystemConfig cfg = fixture::tinyConfig(mode);
    cfg.mem_backend = backend;
    System sys(cfg);
    Runtime rt(sys);
    const Addr base = rt.alloc(4 * block_size);
    // block b, word w = 100*b + w (block 1 seeds the gather check)
    for (unsigned b = 0; b < 4; ++b)
        for (unsigned w = 0; w < 8; ++w)
            sys.memory().write<std::uint64_t>(wordAddr(base, b, w),
                                              b == 1 ? 100 + w
                                                     : 100 * b + w);
    bool gather_ok = false;
    rt.spawn(0, [&](Ctx &ctx) {
        return gatherScatterKernel(ctx, base, &gather_ok);
    });
    rt.run();
    EXPECT_TRUE(gather_ok) << backend << ": gather output mismatch";
    EXPECT_TRUE(sys.stats().audit().empty()) << backend;
    if (span_host)
        *span_host = sys.pmu().peisSpanHost();

    std::vector<std::uint64_t> image;
    for (unsigned b = 0; b < 4; ++b)
        for (unsigned w = 0; w < 8; ++w)
            image.push_back(
                sys.memory().read<std::uint64_t>(wordAddr(base, b, w)));
    return image;
}

TEST(GatherScatter, GoldenEquivalenceAcrossBackends)
{
    // Hand-computed golden image of the scenario.
    std::vector<std::uint64_t> golden;
    for (unsigned b = 0; b < 4; ++b) {
        for (unsigned w = 0; w < 8; ++w) {
            std::uint64_t v = b == 1 ? 100 + w : 100 * b + w;
            if (b == 0 && w < 4)
                v += 7; // in-block scatter
            if ((b == 2 || b == 3) && w == 0)
                v += 3; // block-strided scatter
            golden.push_back(v);
        }
    }

    const auto hmc = runGatherScatter("hmc", ExecMode::LocalityAware);
    const auto ddr = runGatherScatter("ddr", ExecMode::LocalityAware);
    const auto ideal = runGatherScatter("ideal", ExecMode::LocalityAware);
    EXPECT_EQ(hmc, golden);
    EXPECT_EQ(ddr, golden);
    EXPECT_EQ(ideal, golden);
}

TEST(GatherScatter, VaultSpanningRunFallsBackToHost)
{
    // PIM-Only on hmc: the block-strided scatter's two element
    // blocks decode to adjacent vaults, so it must execute host-side
    // (counted by pmu.mb_span_host); the in-block ops stay mem-side.
    std::uint64_t span_host = ~0ull;
    const auto image =
        runGatherScatter("hmc", ExecMode::PimOnly, &span_host);
    EXPECT_EQ(span_host, 1u);
    EXPECT_EQ(image[2 * 8], 100 * 2 + 0 + 3u); // scatter still landed
}

// -------------------------------------------------- energy charging

TEST(BatchingEnergy, TrainChargedByActualFlits)
{
    // The energy model sums physical "link<N>.flits"; a coalesced
    // train therefore pays for 2 request flits where 4 singletons
    // pay 4 (single-cube chain: one request hop).
    const auto single = runSameVaultIncs(4, 1, 0);
    const auto batched = runSameVaultIncs(4, 4, 0);

    StatRegistry single_reg, batched_reg;
    std::vector<Counter> keep(single.size() + batched.size());
    std::size_t k = 0;
    for (const auto &[name, value] : single) {
        keep[k] += value;
        single_reg.add(name, &keep[k++]);
    }
    for (const auto &[name, value] : batched) {
        keep[k] += value;
        batched_reg.add(name, &keep[k++]);
    }

    const EnergyParams p;
    const EnergyBreakdown es = computeEnergy(single_reg, p);
    const EnergyBreakdown eb = computeEnergy(batched_reg, p);
    EXPECT_DOUBLE_EQ(es.offchip - eb.offchip, 2.0 * p.link_flit_pj);
}

} // namespace
} // namespace pei
