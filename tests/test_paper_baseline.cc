/**
 * @file
 * Tests against the full Table 2 machine (`paperBaseline()`): the
 * 16-core / 16 MB L3 / 8-HMC configuration must construct, run, and
 * show the published structural properties (128 vaults, 2048 banks,
 * 16384-set locality monitor, 576 in-flight-PEI bound).
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "runtime/runtime.hh"

namespace pei
{
namespace
{

TEST(PaperBaseline, StructureMatchesTable2)
{
    const SystemConfig cfg = SystemConfig::paperBaseline();
    EXPECT_EQ(cfg.cores, 16u);
    EXPECT_EQ(cfg.cache.l1_bytes, 32u << 10);
    EXPECT_EQ(cfg.cache.l2_bytes, 256u << 10);
    EXPECT_EQ(cfg.cache.l3_bytes, 16u << 20);
    EXPECT_EQ(cfg.cache.l3_ways, 16u);
    EXPECT_EQ(cfg.cache.core_mshrs, 16u);
    EXPECT_EQ(cfg.cache.l3_mshrs, 64u);
    EXPECT_EQ(cfg.hmc.num_cubes * cfg.hmc.vaults_per_cube, 128u);
    EXPECT_EQ(cfg.hmc.num_cubes * cfg.hmc.vaults_per_cube *
                  cfg.hmc.dram.banks_per_vault,
              2048u);
    EXPECT_DOUBLE_EQ(cfg.hmc.dram.tCL_ns, 13.75);
    EXPECT_EQ(cfg.pim.directory_entries, 2048u);
    // L3 tag organization the locality monitor mirrors: 16384 x 16.
    EXPECT_EQ(cfg.cache.l3_bytes / 64 / cfg.cache.l3_ways, 16384u);
    // 576 in-flight PEIs: 16 host PCUs x 4 + 128 memory PCUs x 4.
    const unsigned in_flight =
        cfg.cores * cfg.pim.pcu.operand_buffer_entries +
        cfg.hmc.num_cubes * cfg.hmc.vaults_per_cube *
            cfg.pim.pcu.operand_buffer_entries;
    EXPECT_EQ(in_flight, 576u);
}

TEST(PaperBaseline, ConstructsAndRunsAllModes)
{
    for (ExecMode mode : {ExecMode::HostOnly, ExecMode::PimOnly,
                          ExecMode::IdealHost, ExecMode::LocalityAware}) {
        SystemConfig cfg = SystemConfig::paperBaseline(mode);
        cfg.phys_bytes = 1ULL << 30; // trim backing allocation
        System sys(cfg);
        EXPECT_EQ(sys.mem().pimUnits(), 128u);
        Runtime rt(sys);
        const Addr a = rt.allocArray<std::uint64_t>(1 << 12);
        rt.spawnThreads(sys.numCores(),
                        [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
                            Rng rng(tid);
                            for (int i = 0; i < 200; ++i)
                                co_await ctx.inc64(a +
                                                   8 * rng.below(1 << 12));
                            co_await ctx.pfence();
                            co_await ctx.drain();
                        });
        rt.run();
        std::uint64_t sum = 0;
        for (std::uint64_t i = 0; i < (1 << 12); ++i)
            sum += sys.memory().read<std::uint64_t>(a + 8 * i);
        EXPECT_EQ(sum, 200u * sys.numCores()) << execModeName(mode);
        sys.caches().checkInvariants();
    }
}

TEST(PaperBaseline, BlocksInterleaveAcrossAllVaults)
{
    SystemConfig cfg = SystemConfig::paperBaseline();
    const AddrMap map(cfg.hmc.num_cubes, cfg.hmc.vaults_per_cube,
                      cfg.hmc.dram.banks_per_vault,
                      cfg.hmc.dram.row_bytes);
    std::vector<int> hits(map.totalVaults(), 0);
    for (Addr blk = 0; blk < 128 * 8; ++blk)
        ++hits[map.decode(blk << block_shift).globalVault];
    for (int h : hits)
        EXPECT_EQ(h, 8);
}

TEST(PaperBaseline, SixteenMegabyteL3AbsorbsSmallWorkingSets)
{
    SystemConfig cfg = SystemConfig::paperBaseline(ExecMode::HostOnly);
    cfg.phys_bytes = 1ULL << 30;
    System sys(cfg);
    Runtime rt(sys);
    // 2 MB working set — deep inside the 16 MB L3.
    const Addr a = rt.allocArray<std::uint64_t>(1 << 18);
    rt.spawnThreads(sys.numCores(),
                    [&](Ctx &ctx, unsigned tid, unsigned) -> Task {
                        Rng rng(tid);
                        for (int i = 0; i < 4000; ++i)
                            co_await ctx.inc64(a + 8 * rng.below(1 << 18));
                        co_await ctx.drain();
                    });
    rt.run();
    const auto misses = sys.stats().get("cache.l3_misses");
    const auto hits = sys.stats().get("cache.l3_hits");
    // After the cold pass, the L3 serves nearly everything.
    EXPECT_GT(hits + misses, 0u);
    EXPECT_LT(static_cast<double>(misses),
              0.9 * static_cast<double>(hits + misses));
}

} // namespace
} // namespace pei
