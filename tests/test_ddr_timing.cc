/**
 * @file
 * Directed DDR channel timing tests with hand-computed tick
 * arithmetic: the rolling four-activate tFAW window, same-group
 * tRRD_L spacing, projected-activate gating on row conflicts (the
 * earliestStart/issue consistency fix), and retry re-arm hygiene
 * (stale events no-op instead of waking the scheduler spuriously).
 *
 * Timing config (1 tick = 0.25 ns): tCL = tRCD = tRP = 40t,
 * tRAS = 32t, tRRD_S = 10t, tRRD_L = 20t, tFAW = 300t, burst = 4t,
 * refresh pushed out of every test's horizon.  One channel, 4 bank
 * groups x 4 banks.  Note the cold-start quirk shared with the
 * sequential model: any/group last-activate trackers start at tick 0,
 * so the very first activate waits out tRRD_L (tick 20).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"
#include "mem/addr_map.hh"
#include "mem/ddr.hh"
#include "sim/event_queue.hh"

namespace pei
{
namespace
{

DdrConfig
tinyCfg()
{
    DdrConfig cfg;
    cfg.channels = 1;
    cfg.bank_groups = 4;
    cfg.banks_per_group = 4;
    cfg.row_bytes = 8192;
    cfg.tCL_ns = 10.0;    // 40 ticks
    cfg.tRCD_ns = 10.0;   // 40 ticks
    cfg.tRP_ns = 10.0;    // 40 ticks
    cfg.tRAS_ns = 8.0;    // 32 ticks
    cfg.tRRD_S_ns = 2.5;  // 10 ticks
    cfg.tRRD_L_ns = 5.0;  // 20 ticks
    cfg.tFAW_ns = 75.0;   // 300 ticks
    cfg.tREFI_ns = 1.0e9; // no refresh inside any test
    cfg.chan_gbps = 64.0; // burst = 64 B / 64 GB/s = 1 ns = 4 ticks
    return cfg;
}

class DdrTimingTest : public ::testing::Test
{
  protected:
    /** One channel, 16 banks: blk = (row << 11) | (rowblk << 4) | bank. */
    Addr
    addrOf(unsigned bank, std::uint64_t row) const
    {
        return ((row << 11) | bank) << block_shift;
    }

    void
    read(unsigned bank, std::uint64_t row)
    {
        chan.accessBlock(addrOf(bank, row), false,
                         [this] { done.push_back(eq.now()); });
    }

    DdrConfig cfg = tinyCfg();
    AddrMap map{1, 1, 16, 8192};
    EventQueue eq;
    StatRegistry stats;
    DdrChannel chan{eq, cfg, map, 0, stats};
    std::vector<Tick> done; ///< completion tick of each read, in order
};

TEST_F(DdrTimingTest, FawWindowGatesFifthActivate)
{
    // Four activates to distinct groups pace at tRRD_S (20, 30, 40,
    // 50); the fifth must wait for the window to roll: act >= 20 +
    // tFAW = 320.  Completion = act + tRCD + tCL + burst (the bus is
    // long free by then).
    for (unsigned b : {0u, 4u, 8u, 12u, 1u})
        read(b, 0);
    eq.run();
    EXPECT_EQ(done, (std::vector<Tick>{104, 114, 124, 134, 404}));
    // One retry per release tick, each firing live: no storm.
    EXPECT_EQ(chan.retryArms(), 5u);
    EXPECT_EQ(chan.retryFires(), 5u);
    EXPECT_EQ(chan.retryStale(), 0u);
    EXPECT_TRUE(stats.audit().empty());
}

TEST_F(DdrTimingTest, SameGroupActivatesHonorTrrdL)
{
    // Banks 0 and 1 share group 0: the second activate waits tRRD_L
    // (20 + 20 = 40), not tRRD_S (which would allow 30).  Completions:
    // 20 + 80 + 4 = 104, then max(40 + 80, 104) + 4 ... = 124.
    read(0, 0);
    read(1, 0);
    eq.run();
    EXPECT_EQ(done, (std::vector<Tick>{104, 124}));
    EXPECT_EQ(chan.retryArms(), 2u);
    EXPECT_EQ(chan.retryFires(), 2u);
    EXPECT_EQ(chan.retryStale(), 0u);
}

TEST_F(DdrTimingTest, ConflictGatesProjectedActivateNotStart)
{
    // Open row 0 on bank 0 (activate at 20, done 104), then at 104
    // activate bank 4 (different group, act = 104) and request row 1
    // on bank 0.  The conflict's precharge may start at 104: its
    // *projected activate* 104 + tRP = 144 already clears
    // any_last_act + tRRD_S = 114 and group 0's tRRD_L = 40.  Gating
    // the start tick instead (the old bug) would stall the precharge
    // to 114 and push the completion from 228 to 238 via an extra
    // retry wakeup.
    read(0, 0);
    eq.run();
    ASSERT_EQ(done, (std::vector<Tick>{104}));

    read(4, 0); // issues at 104: activate 104, data 184..188
    read(0, 1); // conflict: pre 104, act 144, data 224..228
    eq.run();
    EXPECT_EQ(done, (std::vector<Tick>{104, 188, 228}));
    // Only the cold-start arm; both phase-B requests issued on
    // arrival with no retry in between.
    EXPECT_EQ(chan.retryArms(), 1u);
    EXPECT_EQ(chan.retryFires(), 1u);
    EXPECT_EQ(chan.retryStale(), 0u);
    EXPECT_TRUE(stats.audit().empty());
}

TEST_F(DdrTimingTest, EarlierReArmLeavesExactlyOneStaleRetry)
{
    // Saturate the tFAW window (activates 20, 30, 40, 50), then queue
    // bank 5 at t=60 — not issuable until 320, retry armed there.  A
    // row hit on bank 4 arriving at t=70 becomes issuable at 114
    // (bank free), re-arming the retry *earlier*; the abandoned tick-
    // 320 event must drain as a stale no-op, not a spurious wakeup.
    for (unsigned b : {0u, 4u, 8u, 12u})
        read(b, 0);
    eq.schedule(60, [this] { read(5, 0); });
    eq.schedule(70, [this] { read(4, 0); });
    eq.run();

    // Burst completions 104..134; the row hit at 114 finishes at 158
    // (tCL + burst); bank 5 activates at 320 and finishes at 404.
    EXPECT_EQ(done, (std::vector<Tick>{104, 114, 124, 134, 158, 404}));
    EXPECT_EQ(chan.retryArms(), 7u);
    EXPECT_EQ(chan.retryFires(), 6u);
    EXPECT_EQ(chan.retryStale(), 1u);
    // The drain invariant: every arm fired or drained stale.
    EXPECT_TRUE(stats.audit().empty());
}

} // namespace
} // namespace pei
