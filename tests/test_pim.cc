/**
 * @file
 * Unit tests for the PIM module: PEI functional semantics, the PIM
 * directory's reader-writer locking and pfence, the locality
 * monitor's prediction behaviour (including the ignore flag and
 * partial-tag aliasing), and the PCU operand buffer / compute port
 * model.
 */

#include <gtest/gtest.h>

#include "common/rng.hh"
#include "fixture.hh"
#include "pim/locality_monitor.hh"
#include "pim/pcu.hh"
#include "pim/pei_op.hh"
#include "pim/pim_directory.hh"
#include "runtime/runtime.hh"

namespace pei
{
namespace
{

// ------------------------------------------------------------- PEI ops

struct PeiOpsFixture : public ::testing::Test
{
    PeiOpsFixture() : vm(16 << 20), base(vm.alloc(4096)) {}

    PimPacket
    exec(PeiOpcode op, Addr vaddr, const void *in, unsigned in_size)
    {
        PimPacket pkt = makePimPacket(op, vm.translate(vaddr), in,
                                      in_size);
        executePeiFunctional(vm, pkt);
        return pkt;
    }

    VirtualMemory vm;
    Addr base;
};

TEST_F(PeiOpsFixture, TableOneMetadataMatchesPaper)
{
    EXPECT_TRUE(peiOpInfo(PeiOpcode::Inc64).writes);
    EXPECT_EQ(peiOpInfo(PeiOpcode::Inc64).input_bytes, 0u);
    EXPECT_EQ(peiOpInfo(PeiOpcode::Min64).input_bytes, 8u);
    EXPECT_FALSE(peiOpInfo(PeiOpcode::HashProbe).writes);
    EXPECT_EQ(peiOpInfo(PeiOpcode::HashProbe).output_bytes, 9u);
    EXPECT_EQ(peiOpInfo(PeiOpcode::HistBinIdx).input_bytes, 1u);
    EXPECT_EQ(peiOpInfo(PeiOpcode::HistBinIdx).output_bytes, 16u);
    EXPECT_EQ(peiOpInfo(PeiOpcode::EuclidDist).input_bytes, 64u);
    EXPECT_EQ(peiOpInfo(PeiOpcode::EuclidDist).output_bytes, 4u);
    EXPECT_EQ(peiOpInfo(PeiOpcode::DotProduct).input_bytes, 32u);
    EXPECT_EQ(peiOpInfo(PeiOpcode::DotProduct).output_bytes, 8u);
}

TEST_F(PeiOpsFixture, Inc64)
{
    vm.write<std::uint64_t>(base, 41);
    exec(PeiOpcode::Inc64, base, nullptr, 0);
    EXPECT_EQ(vm.read<std::uint64_t>(base), 42u);
}

TEST_F(PeiOpsFixture, Min64KeepsSmaller)
{
    vm.write<std::uint64_t>(base, 100);
    std::uint64_t v = 50;
    exec(PeiOpcode::Min64, base, &v, 8);
    EXPECT_EQ(vm.read<std::uint64_t>(base), 50u);
    v = 70;
    exec(PeiOpcode::Min64, base, &v, 8);
    EXPECT_EQ(vm.read<std::uint64_t>(base), 50u);
}

TEST_F(PeiOpsFixture, FaddAccumulates)
{
    vm.write<double>(base, 1.5);
    double d = 2.25;
    exec(PeiOpcode::FaddDouble, base, &d, 8);
    EXPECT_DOUBLE_EQ(vm.read<double>(base), 3.75);
}

TEST_F(PeiOpsFixture, HashProbeMatchAndChain)
{
    HashBucket bucket{};
    bucket.keys[0] = 7;
    bucket.keys[1] = 9;
    bucket.count = 2;
    bucket.next = 0xABC0;
    vm.write(base, bucket);

    HashProbeIn hit{9};
    PimPacket r = exec(PeiOpcode::HashProbe, base, &hit, 8);
    EXPECT_EQ(r.output[8], 1);
    std::uint64_t next;
    std::memcpy(&next, r.output.data(), 8);
    EXPECT_EQ(next, 0xABC0u);

    HashProbeIn miss{8};
    r = exec(PeiOpcode::HashProbe, base, &miss, 8);
    EXPECT_EQ(r.output[8], 0);
}

TEST_F(PeiOpsFixture, HistBinIdxShiftsAndTruncates)
{
    for (unsigned i = 0; i < 16; ++i)
        vm.write<std::uint32_t>(base + 4 * i, (i * 3 + 1) << 24);
    std::uint8_t shift = 24;
    PimPacket r = exec(PeiOpcode::HistBinIdx, base, &shift, 1);
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(r.output[i], ((i * 3 + 1)) & 0xFF);
}

TEST_F(PeiOpsFixture, EuclidDistPartialSum)
{
    float a[16], b[16];
    for (unsigned i = 0; i < 16; ++i) {
        a[i] = static_cast<float>(i);
        b[i] = static_cast<float>(i) + 2.0f;
        vm.write<float>(base + 4 * i, a[i]);
    }
    PimPacket r = exec(PeiOpcode::EuclidDist, base, b, 64);
    float out;
    std::memcpy(&out, r.output.data(), 4);
    EXPECT_FLOAT_EQ(out, 16 * 4.0f);
}

TEST_F(PeiOpsFixture, DotProduct)
{
    double x[4] = {1, 2, 3, 4}, w[4] = {2, 0.5, -1, 3};
    for (unsigned i = 0; i < 4; ++i)
        vm.write<double>(base + 8 * i, x[i]);
    PimPacket r = exec(PeiOpcode::DotProduct, base, w, 32);
    double out;
    std::memcpy(&out, r.output.data(), 8);
    EXPECT_DOUBLE_EQ(out, 2 + 1 - 3 + 12);
}

TEST_F(PeiOpsFixture, SingleCacheBlockRestrictionEnforced)
{
    // A 32-byte target starting 48 bytes into a block crosses the
    // boundary — the paper's restriction forbids it (death test via
    // panic/abort).
    double w[4] = {0, 0, 0, 0};
    EXPECT_DEATH(
        {
            PimPacket pkt = makePimPacket(PeiOpcode::DotProduct,
                                          0x1030, w, 32);
            (void)pkt;
        },
        "single-cache-block");
}

// ------------------------------------------------------- PIM directory

struct DirFixture : public ::testing::Test
{
    DirFixture() : dir(eq, 64, 2, stats) {}

    EventQueue eq;
    StatRegistry stats;
    PimDirectory dir;
};

TEST_F(DirFixture, ReadersShareWritersExclude)
{
    int granted = 0;
    dir.acquire(1, false, [&] { ++granted; });
    dir.acquire(1, false, [&] { ++granted; });
    eq.run();
    EXPECT_EQ(granted, 2); // concurrent readers

    int wgrant = 0;
    dir.acquire(1, true, [&] { ++wgrant; });
    eq.run();
    EXPECT_EQ(wgrant, 0); // blocked behind readers
    dir.release(1, false);
    eq.run();
    EXPECT_EQ(wgrant, 0);
    dir.release(1, false);
    eq.run();
    EXPECT_EQ(wgrant, 1); // last reader released it
    dir.release(1, true);
}

TEST_F(DirFixture, WritersSerialize)
{
    std::vector<int> order;
    dir.acquire(2, true, [&] { order.push_back(1); });
    dir.acquire(2, true, [&] { order.push_back(2); });
    eq.run();
    ASSERT_EQ(order.size(), 1u);
    dir.release(2, true);
    eq.run();
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[1], 2);
    dir.release(2, true);
}

TEST_F(DirFixture, QueuedWriterBlocksLaterReaders)
{
    int events = 0;
    dir.acquire(3, false, [&] { ++events; }); // active reader
    dir.acquire(3, true, [&] { events += 10; }); // queued writer
    dir.acquire(3, false, [&] { events += 100; }); // must wait (no
                                                   // starvation)
    eq.run();
    EXPECT_EQ(events, 1);
    dir.release(3, false);
    eq.run();
    EXPECT_EQ(events, 11); // writer went next
    dir.release(3, true);
    eq.run();
    EXPECT_EQ(events, 111);
    dir.release(3, false);
}

TEST_F(DirFixture, AliasedBlocksSerializeButStayCorrect)
{
    // foldedXor(5, 6) = 5 and foldedXor(198, 6) = (198 & 63) ^
    // (198 >> 6) = 6 ^ 3 = 5: the two blocks share a directory
    // entry — a false positive that serializes them.
    int granted = 0;
    dir.acquire(5, true, [&] { ++granted; });
    dir.acquire(198, true, [&] { ++granted; });
    eq.run();
    EXPECT_EQ(granted, 1);
    EXPECT_GE(dir.falseConflicts(), 1u);
    dir.release(5, true);
    eq.run();
    EXPECT_EQ(granted, 2);
    dir.release(198, true);
}

TEST_F(DirFixture, PfenceWaitsForAllWriters)
{
    bool fence_done = false;
    dir.acquire(7, true, [] {});
    dir.acquire(8, true, [] {});
    eq.run();
    dir.pfence([&fence_done] { fence_done = true; });
    eq.run();
    EXPECT_FALSE(fence_done);
    dir.release(7, true);
    eq.run();
    EXPECT_FALSE(fence_done);
    dir.release(8, true);
    eq.run();
    EXPECT_TRUE(fence_done);
}

TEST_F(DirFixture, PfenceIgnoresReaders)
{
    bool fence_done = false;
    dir.acquire(9, false, [] {});
    eq.run();
    dir.pfence([&fence_done] { fence_done = true; });
    eq.run();
    EXPECT_TRUE(fence_done);
    dir.release(9, false);
}

TEST(PimDirectoryIdeal, ExactTrackingNeverAliases)
{
    EventQueue eq;
    StatRegistry stats;
    PimDirectory dir(eq, 0, 0, stats, "ideal_dir");
    int granted = 0;
    // 1000 writers to 1000 distinct blocks all grant immediately.
    for (Addr b = 0; b < 1000; ++b)
        dir.acquire(b, true, [&granted] { ++granted; });
    eq.run();
    EXPECT_EQ(granted, 1000);
    EXPECT_EQ(dir.conflicts(), 0u);
    for (Addr b = 0; b < 1000; ++b)
        dir.release(b, true);
}

TEST(PimDirectoryStress, RandomAcquireReleaseBalances)
{
    EventQueue eq;
    StatRegistry stats;
    PimDirectory dir(eq, 128, 2, stats, "stress_dir");
    Rng rng(9);
    std::vector<std::pair<Addr, bool>> held;
    std::uint64_t granted = 0, requested = 0;

    for (int i = 0; i < 5000; ++i) {
        if (!held.empty() && rng.chance(0.5)) {
            const auto [block, writer] = held.back();
            held.pop_back();
            dir.release(block, writer);
        } else {
            const Addr block = rng.below(512);
            const bool writer = rng.chance(0.3);
            ++requested;
            dir.acquire(block, writer, [&granted, &held, block, writer] {
                ++granted;
                held.emplace_back(block, writer);
            });
        }
        eq.run();
    }
    while (!held.empty()) {
        const auto [block, writer] = held.back();
        held.pop_back();
        dir.release(block, writer);
        eq.run();
    }
    EXPECT_EQ(granted, requested);
    EXPECT_EQ(dir.inFlightWriters(), 0u);
    bool fence_done = false;
    dir.pfence([&fence_done] { fence_done = true; });
    eq.run();
    EXPECT_TRUE(fence_done);
    // End-of-sim audit: acquire/release balance and no writers left.
    EXPECT_TRUE(stats.audit().empty());
}

// ----------------------------------------------------- LocalityMonitor

TEST(LocalityMonitorTest, MissUntilTouched)
{
    StatRegistry stats;
    LocalityMonitor mon(64, 4, stats, 10, true, "m1");
    EXPECT_FALSE(mon.lookupForPei(0x123));
    mon.onL3Access(0x123);
    EXPECT_TRUE(mon.lookupForPei(0x123));
}

TEST(LocalityMonitorTest, IgnoreFlagSuppressesFirstPimHit)
{
    StatRegistry stats;
    LocalityMonitor mon(64, 4, stats, 10, true, "m2");
    mon.onPimIssue(0x55);
    EXPECT_FALSE(mon.lookupForPei(0x55)); // first hit ignored
    EXPECT_TRUE(mon.lookupForPei(0x55));  // second hit counts
}

TEST(LocalityMonitorTest, DemandAccessClearsIgnoreFlag)
{
    StatRegistry stats;
    LocalityMonitor mon(64, 4, stats, 10, true, "m3");
    mon.onPimIssue(0x55);
    mon.onL3Access(0x55); // demand touch clears the flag
    EXPECT_TRUE(mon.lookupForPei(0x55));
}

TEST(LocalityMonitorTest, IgnoreFlagDisabledAblation)
{
    StatRegistry stats;
    LocalityMonitor mon(64, 4, stats, 10, false, "m4");
    mon.onPimIssue(0x55);
    EXPECT_TRUE(mon.lookupForPei(0x55)); // no suppression
}

TEST(LocalityMonitorTest, LruEvictionForgetsColdBlocks)
{
    StatRegistry stats;
    LocalityMonitor mon(4, 2, stats, 10, true, "m5");
    // Same set (set = block & 3): blocks 0, 4, 8.
    mon.onL3Access(0);
    mon.onL3Access(4);
    mon.onL3Access(8); // evicts 0 (LRU)
    EXPECT_FALSE(mon.lookupForPei(0));
    EXPECT_TRUE(mon.lookupForPei(4));
    EXPECT_TRUE(mon.lookupForPei(8));
}

TEST(LocalityMonitorTest, StatsPartitionLookups)
{
    StatRegistry stats;
    LocalityMonitor mon(64, 4, stats, 10, true, "m7");
    mon.onPimIssue(0x55);
    EXPECT_FALSE(mon.lookupForPei(0x55)); // ignored hit — NOT a miss
    EXPECT_TRUE(mon.lookupForPei(0x55));  // genuine hit
    EXPECT_FALSE(mon.lookupForPei(0x99)); // genuine miss
    EXPECT_EQ(mon.lookups(), 3u);
    EXPECT_EQ(mon.hits(), 1u);
    EXPECT_EQ(mon.misses(), 1u);
    EXPECT_EQ(mon.ignoredHits(), 1u);
    // The disjoint-outcome invariant the monitor registers.
    EXPECT_EQ(mon.hits() + mon.misses() + mon.ignoredHits(),
              mon.lookups());
    EXPECT_TRUE(stats.audit().empty());
}

TEST(LocalityMonitorTest, PartialTagsCanFalsePositive)
{
    StatRegistry stats;
    // 1-bit partial tags: aliasing is certain among a few blocks.
    LocalityMonitor mon(4, 1, stats, 1, true, "m6");
    mon.onL3Access(0x10); // set 0
    bool aliased = false;
    for (Addr b = 0x20; b < 0x200; b += 0x10) {
        if ((b & 3) == 0 && mon.lookupForPei(b)) {
            aliased = true;
            break;
        }
    }
    EXPECT_TRUE(aliased);
}

TEST(LocalityMonitorTest, AliasedTagsDoNotCorruptHitAccounting)
{
    StatRegistry stats;
    // 64 sets (6 set bits), 10-bit folded-XOR tags.  foldedXor is
    // invariant under v ^= (c | c << 10), so the block uppers 0x5 and
    // 0x5 ^ (3 | 3 << 10) = 0xC06 both fold to tag 5; shifted onto
    // the same set they are indistinguishable to the monitor.
    LocalityMonitor mon(64, 4, stats, 10, true, "m8");
    const Addr b1 = 0x5ULL << 6;
    const Addr b2 = 0xC06ULL << 6;
    ASSERT_NE(b1, b2);

    mon.onL3Access(b1);
    // The alias false-positives — and must be *accounted* as a hit,
    // not as a miss plus a phantom entry.
    EXPECT_TRUE(mon.lookupForPei(b2));
    EXPECT_TRUE(mon.lookupForPei(b1));
    EXPECT_EQ(mon.lookups(), 2u);
    EXPECT_EQ(mon.hits(), 2u);
    EXPECT_EQ(mon.misses(), 0u);
    EXPECT_EQ(mon.ignoredHits(), 0u);
    EXPECT_TRUE(stats.audit().empty());
}

TEST(LocalityMonitorTest, AliasedPimTouchSharesOneIgnoreFlag)
{
    StatRegistry stats;
    LocalityMonitor mon(64, 4, stats, 10, true, "m9");
    const Addr b1 = 0x5ULL << 6;
    const Addr b2 = 0xC06ULL << 6; // same set, same folded tag

    mon.onPimIssue(b1); // allocates one ignore-flagged entry
    // The alias consumes the single ignore flag; the entry is shared,
    // so the flag must be spent exactly once across both addresses.
    EXPECT_FALSE(mon.lookupForPei(b2));
    EXPECT_TRUE(mon.lookupForPei(b1));
    EXPECT_TRUE(mon.lookupForPei(b2));
    EXPECT_EQ(mon.lookups(), 3u);
    EXPECT_EQ(mon.ignoredHits(), 1u);
    EXPECT_EQ(mon.hits(), 2u);
    EXPECT_EQ(mon.misses(), 0u);
    EXPECT_EQ(mon.hits() + mon.misses() + mon.ignoredHits(),
              mon.lookups());
    EXPECT_TRUE(stats.audit().empty());
}

// ---------------------------------------------- Balanced dispatch §7.4

/**
 * Drives one core through: demand-touch @p target (monitor insert),
 * 256 cold streaming loads (off-chip flit pressure), one PEI on
 * target, a long compute (EMA decay), one more PEI.  A free
 * coroutine function: reference parameters outlive the run (they
 * live in runSaturationScenario's frame), unlike a temporary
 * closure's captures.
 */
Task
saturationKernel(Ctx &ctx, System &sys, Addr target, Addr stream,
                 std::uint64_t &sat_hot, std::uint64_t &host_hot)
{
    // Demand access: target becomes a locality-monitor hit.
    co_await ctx.load(target);
    // Saturate the off-chip links with cold-block fetches.
    for (unsigned i = 0; i < 256; ++i)
        co_await ctx.loadAsync(stream + i * block_size);
    co_await ctx.drain();
    // Monitor says "host"; the saturation override may disagree.
    co_await ctx.pei(PeiOpcode::Inc64, target, nullptr, 0);
    sat_hot = sys.pmu().saturationToMem();
    host_hot = sys.pmu().peisHost();
    // ~50 EMA half-periods of pure compute: pressure decays.
    co_await ctx.compute(2000000);
    co_await ctx.pei(PeiOpcode::Inc64, target, nullptr, 0);
}

void
runSaturationScenario(System &sys, std::uint64_t &sat_hot,
                      std::uint64_t &host_hot)
{
    Runtime rt(sys);
    const Addr target = rt.alloc(block_size);
    const Addr stream = rt.alloc(256 * block_size);
    sys.memory().write<std::uint64_t>(target, 0);

    rt.spawn(0, [&](Ctx &ctx) {
        return saturationKernel(ctx, sys, target, stream, sat_hot,
                                host_hot);
    });
    rt.run();
    EXPECT_EQ(sys.memory().read<std::uint64_t>(target), 2u);
}

TEST(BalancedDispatchTest, SaturationOverridesMonitorHostDecision)
{
    SystemConfig cfg = fixture::smallConfig(ExecMode::LocalityAware);
    cfg.pim.balanced_dispatch = true;
    cfg.pim.balanced_saturation_flits = 4.0;
    System sys(cfg);

    std::uint64_t sat_hot = 0, host_hot = 0;
    runSaturationScenario(sys, sat_hot, host_hot);

    // While the link EMA was saturated, the monitor-hit PEI was
    // forced to memory...
    EXPECT_EQ(sat_hot, 1u);
    EXPECT_EQ(host_hot, 0u);
    // ...and once the pressure decayed, the monitor's host decision
    // was back in force: no further overrides, host execution again.
    EXPECT_EQ(sys.pmu().saturationToMem(), sat_hot);
    EXPECT_EQ(sys.pmu().peisHost(), 1u);
    EXPECT_TRUE(sys.stats().audit().empty());
}

TEST(BalancedDispatchTest, ZeroThresholdKeepsMonitorDecisionAbsolute)
{
    // The default threshold (0) disables the override entirely, so
    // baseline balanced-dispatch behaviour — and every regenerated
    // figure — is unchanged.
    SystemConfig cfg = fixture::smallConfig(ExecMode::LocalityAware);
    cfg.pim.balanced_dispatch = true;
    System sys(cfg);

    std::uint64_t sat_hot = 0, host_hot = 0;
    runSaturationScenario(sys, sat_hot, host_hot);

    EXPECT_EQ(sat_hot, 0u);
    EXPECT_EQ(host_hot, 1u); // monitor hit executed host-side
    EXPECT_EQ(sys.pmu().saturationToMem(), 0u);
    EXPECT_EQ(sys.pmu().peisHost(), 2u);
    EXPECT_TRUE(sys.stats().audit().empty());
}

// ------------------------------------------------------------- PCU

TEST(PcuTest, OperandBufferLimitsInFlight)
{
    EventQueue eq;
    StatRegistry stats;
    Pcu pcu(eq, "p1", 2, 1, 4000, stats);
    int granted = 0;
    for (int i = 0; i < 5; ++i)
        pcu.acquireEntry([&granted] { ++granted; });
    EXPECT_EQ(granted, 2);
    pcu.releaseEntry();
    eq.run();
    EXPECT_EQ(granted, 3);
    pcu.releaseEntry();
    pcu.releaseEntry();
    eq.run();
    EXPECT_EQ(granted, 5);
}

TEST(PcuTest, ComputeSerializesOnOnePort)
{
    EventQueue eq;
    StatRegistry stats;
    Pcu pcu(eq, "p2", 4, 1, 4000, stats);
    std::vector<Tick> ends;
    for (int i = 0; i < 3; ++i)
        pcu.compute(10, [&ends, &eq] { ends.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(ends.size(), 3u);
    EXPECT_EQ(ends[0], 10u);
    EXPECT_EQ(ends[1], 20u);
    EXPECT_EQ(ends[2], 30u);
}

TEST(PcuTest, WiderIssueOverlapsComputation)
{
    EventQueue eq;
    StatRegistry stats;
    Pcu pcu(eq, "p3", 4, 2, 4000, stats);
    std::vector<Tick> ends;
    for (int i = 0; i < 4; ++i)
        pcu.compute(10, [&ends, &eq] { ends.push_back(eq.now()); });
    eq.run();
    ASSERT_EQ(ends.size(), 4u);
    EXPECT_EQ(ends[1], 10u); // two ports run in parallel
    EXPECT_EQ(ends[3], 20u);
}

TEST(PcuTest, MemSideClockIsSlower)
{
    EventQueue eq;
    StatRegistry stats;
    Pcu host(eq, "p4h", 4, 1, 4000, stats);
    Pcu mem(eq, "p4m", 4, 1, 2000, stats);
    Tick host_end = 0, mem_end = 0;
    host.compute(10, [&] { host_end = eq.now(); });
    mem.compute(10, [&] { mem_end = eq.now(); });
    eq.run();
    EXPECT_EQ(host_end, 10u);
    EXPECT_EQ(mem_end, 20u); // 2 GHz: 2 ticks per cycle
}

} // namespace
} // namespace pei
