/**
 * @file
 * Unit tests for the cache hierarchy: hit/miss behaviour, MESI
 * transitions, inclusion, MSHR coalescing and exhaustion, LRU
 * replacement, and the PMU's back-invalidation / back-writeback
 * hooks.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "mem/hmc.hh"

namespace pei
{
namespace
{

struct CacheFixture : public ::testing::Test
{
    CacheFixture()
    {
        hmc_cfg.num_cubes = 1;
        hmc_cfg.vaults_per_cube = 4;
        hmc = std::make_unique<HmcBackend>(sq, hmc_cfg, stats);

        cache_cfg.l1_bytes = 1 << 10;
        cache_cfg.l1_ways = 2;
        cache_cfg.l2_bytes = 4 << 10;
        cache_cfg.l2_ways = 4;
        cache_cfg.l3_bytes = 32 << 10;
        cache_cfg.l3_ways = 8;
        cache_cfg.core_mshrs = 4;
        cache_cfg.l3_mshrs = 8;
        caches = std::make_unique<CacheHierarchy>(eq, cache_cfg, 4, *hmc,
                                                  stats);
    }

    /** Run one access to completion; returns elapsed ticks. */
    Ticks
    doAccess(unsigned core, Addr paddr, bool write)
    {
        const Tick start = eq.now();
        bool done = false;
        caches->access(core, paddr, write, [&done] { done = true; });
        while (!done && eq.runOne()) {}
        EXPECT_TRUE(done);
        return eq.now() - start;
    }

    void
    settle()
    {
        while (eq.runOne()) {}
    }

    StatRegistry stats;
    ShardedQueue sq; // single shard: the sequential engine
    EventQueue &eq = sq.host();
    HmcConfig hmc_cfg;
    CacheConfig cache_cfg;
    std::unique_ptr<HmcBackend> hmc;
    std::unique_ptr<CacheHierarchy> caches;
};

TEST_F(CacheFixture, ColdMissThenHit)
{
    const Ticks miss = doAccess(0, 0x1000, false);
    const Ticks hit = doAccess(0, 0x1000, false);
    EXPECT_GT(miss, hit);
    EXPECT_EQ(hit, cache_cfg.l1_latency);
    EXPECT_EQ(stats.get("cache.l1_hits"), 1u);
    EXPECT_EQ(stats.get("cache.l3_misses"), 1u);
}

TEST_F(CacheFixture, ReadFillsExclusive)
{
    doAccess(0, 0x2000, false);
    EXPECT_EQ(caches->l1State(0, 0x2000), MesiState::Exclusive);
    EXPECT_EQ(caches->l2State(0, 0x2000), MesiState::Exclusive);
    EXPECT_TRUE(caches->l3Contains(0x2000));
}

TEST_F(CacheFixture, SecondReaderDowngradesToShared)
{
    doAccess(0, 0x2000, false);
    doAccess(1, 0x2000, false);
    EXPECT_EQ(caches->l1State(0, 0x2000), MesiState::Shared);
    EXPECT_EQ(caches->l1State(1, 0x2000), MesiState::Shared);
    caches->checkInvariants();
}

TEST_F(CacheFixture, WriteInvalidatesRemoteCopies)
{
    doAccess(0, 0x3000, false);
    doAccess(1, 0x3000, false);
    doAccess(2, 0x3000, true);
    EXPECT_EQ(caches->l1State(0, 0x3000), MesiState::Invalid);
    EXPECT_EQ(caches->l1State(1, 0x3000), MesiState::Invalid);
    EXPECT_EQ(caches->l1State(2, 0x3000), MesiState::Modified);
    EXPECT_GE(stats.get("cache.invalidations"), 2u);
    caches->checkInvariants();
}

TEST_F(CacheFixture, WriteUpgradeOnSharedLine)
{
    doAccess(0, 0x3000, false);
    doAccess(1, 0x3000, false);
    // Core 0 upgrades its shared copy.
    doAccess(0, 0x3000, true);
    EXPECT_EQ(caches->l1State(0, 0x3000), MesiState::Modified);
    EXPECT_EQ(caches->l1State(1, 0x3000), MesiState::Invalid);
    caches->checkInvariants();
}

TEST_F(CacheFixture, DirtyRemoteCopyWritesBackOnRead)
{
    doAccess(0, 0x4000, true); // core 0 dirties the block
    doAccess(1, 0x4000, false);
    EXPECT_EQ(caches->l1State(0, 0x4000), MesiState::Shared);
    EXPECT_EQ(caches->l1State(1, 0x4000), MesiState::Shared);
    EXPECT_GE(stats.get("cache.writebacks_l3"), 1u);
    caches->checkInvariants();
}

TEST_F(CacheFixture, InclusionHoldsUnderCapacityPressure)
{
    // Touch far more blocks than L1/L2 can hold.
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        doAccess(i % 4, 0x10000 + 64 * rng.below(512), rng.chance(0.4));
    settle();
    caches->checkInvariants();
}

TEST_F(CacheFixture, L3EvictionBackInvalidatesPrivateCopies)
{
    // Fill one L3 set past associativity; the victim's private
    // copies must disappear (inclusive policy).
    const unsigned l3_sets = static_cast<unsigned>(
        cache_cfg.l3_bytes / 64 / cache_cfg.l3_ways);
    const Addr first = 0x100000;
    doAccess(0, first, false);
    for (unsigned w = 1; w <= cache_cfg.l3_ways; ++w)
        doAccess(1, first + (std::uint64_t{w} * l3_sets << 6), false);
    settle();
    EXPECT_FALSE(caches->l3Contains(first));
    EXPECT_EQ(caches->l1State(0, first), MesiState::Invalid);
    EXPECT_EQ(caches->l2State(0, first), MesiState::Invalid);
    caches->checkInvariants();
}

TEST_F(CacheFixture, MshrCoalescesSameBlock)
{
    int done = 0;
    for (int i = 0; i < 3; ++i)
        caches->access(0, 0x5000 + 8 * i, false, [&done] { ++done; });
    settle();
    EXPECT_EQ(done, 3);
    // One DRAM fetch serves all three word accesses.
    EXPECT_EQ(stats.get("hmc.reads"), 1u);
}

TEST_F(CacheFixture, MshrExhaustionStallsAndRecovers)
{
    int done = 0;
    // 8 distinct blocks > 4 core MSHRs: later ones must stall and
    // still complete.
    for (int i = 0; i < 8; ++i)
        caches->access(0, 0x8000 + 64 * i, false, [&done] { ++done; });
    settle();
    EXPECT_EQ(done, 8);
    caches->checkInvariants();
}

TEST_F(CacheFixture, BackInvalidateRemovesEveryCopy)
{
    doAccess(0, 0x6000, true); // dirty in core 0
    doAccess(1, 0x6000, false);
    bool done = false;
    caches->backInvalidate(0x6000, [&done] { done = true; });
    settle();
    EXPECT_TRUE(done);
    EXPECT_FALSE(caches->contains(0x6000));
    // Dirty data went back to memory.
    EXPECT_GE(stats.get("cache.writebacks_mem"), 1u);
    EXPECT_GE(stats.get("hmc.writes"), 1u);
    caches->checkInvariants();
}

TEST_F(CacheFixture, BackWritebackCleansButKeepsCopies)
{
    doAccess(0, 0x7000, true); // dirty in core 0
    bool done = false;
    caches->backWriteback(0x7000, [&done] { done = true; });
    settle();
    EXPECT_TRUE(done);
    EXPECT_TRUE(caches->contains(0x7000));           // copies remain
    EXPECT_GE(stats.get("hmc.writes"), 1u);          // but memory fresh
    EXPECT_NE(caches->l1State(0, 0x7000), MesiState::Modified);
    caches->checkInvariants();
}

TEST_F(CacheFixture, BackInvalidateOnUncachedBlockIsCheap)
{
    bool done = false;
    caches->backInvalidate(0xF0000, [&done] { done = true; });
    settle();
    EXPECT_TRUE(done);
    EXPECT_EQ(stats.get("hmc.writes"), 0u);
}

TEST_F(CacheFixture, LruVictimIsLeastRecentlyUsed)
{
    CacheArray array(1 << 10, 2); // 8 sets, 2 ways
    const Addr a = 0x100, b = 0x100 + 8, c = 0x100 + 16; // same set
    array.fill(array.victim(a), a, MesiState::Shared);
    array.fill(array.victim(b), b, MesiState::Shared);
    array.touch(*array.find(a)); // b becomes LRU
    CacheLine &v = array.victim(c);
    EXPECT_EQ(v.block, b);
}

class CacheGeometry
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheGeometry, RandomTrafficKeepsInvariants)
{
    const auto [ways, cores] = GetParam();
    StatRegistry stats;
    ShardedQueue sq;
    EventQueue &eq = sq.host();
    HmcConfig hmc_cfg;
    hmc_cfg.num_cubes = 1;
    hmc_cfg.vaults_per_cube = 4;
    HmcBackend hmc(sq, hmc_cfg, stats);
    CacheConfig cfg;
    cfg.l1_bytes = 2 << 10;
    cfg.l1_ways = ways;
    cfg.l2_bytes = 8 << 10;
    cfg.l2_ways = ways;
    cfg.l3_bytes = 32 << 10;
    cfg.l3_ways = ways;
    CacheHierarchy caches(eq, cfg, cores, hmc, stats);

    Rng rng(ways * 100 + cores);
    int done = 0, issued = 0;
    for (int i = 0; i < 2000; ++i) {
        ++issued;
        caches.access(static_cast<unsigned>(rng.below(cores)),
                      0x4000 + 64 * rng.below(256), rng.chance(0.5),
                      [&done] { ++done; });
        if (i % 7 == 0)
            eq.runOne();
    }
    while (eq.runOne()) {}
    EXPECT_EQ(done, issued);
    caches.checkInvariants();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheGeometry,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(1u, 2u, 4u, 8u)));

} // namespace
} // namespace pei
