/**
 * @file
 * Backend-equivalence suite: the same PEI program must produce
 * identical architectural results on every registered memory backend
 * (hmc, ddr, ideal) — only the timing may differ.
 *
 * Two layers of coverage:
 *  - a directed deterministic PEI/load/store mix compared across
 *    backends on final memory contents and PEI conservation, and
 *  - the simfuzz differential checker pinned to each backend in
 *    turn, which runs the full generated op set (every PeiOpcode,
 *    async and blocking issue, pfences, contended shared blocks)
 *    under all four execution modes against the sequential golden
 *    model with invariant probes armed.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "check/fuzz_case.hh"
#include "common/rng.hh"
#include "fixture.hh"
#include "mem/backend.hh"
#include "runtime/runtime.hh"

namespace pei
{
namespace
{

const char *const kBackends[] = {"hmc", "ddr", "ideal"};

/** Architectural outcome of one run: everything timing-independent. */
struct ArchResult
{
    Tick ticks = 0;               ///< timing — excluded from equality
    std::uint64_t checksum = 0;   ///< final footprint contents
    std::uint64_t peis_total = 0; ///< host + memory PEI executions
};

/**
 * Deterministic PEI/load/store mix over a shared array on the given
 * backend.  Same seed => same architectural result on every backend.
 */
ArchResult
runMixOn(const std::string &backend, std::uint64_t seed)
{
    SystemConfig cfg = fixture::smallConfig(ExecMode::LocalityAware);
    cfg.mem_backend = backend;
    // Keep the alternative backends' unit counts aligned with the
    // vault count so the runs are geometrically comparable.
    cfg.ddr.channels = cfg.hmc.vaults_per_cube;
    cfg.ideal_mem.pim_units = cfg.hmc.vaults_per_cube;

    System sys(cfg);
    Runtime rt(sys);
    const std::uint64_t n = 1 << 10;
    const Addr arr = rt.allocArray<std::uint64_t>(n);
    rt.spawnThreads(sys.numCores(),
                    [&, seed](Ctx &ctx, unsigned tid, unsigned) -> Task {
                        Rng rng(seed * 131 + tid);
                        for (int i = 0; i < 800; ++i) {
                            const Addr a = arr + 8 * rng.below(n);
                            if (rng.chance(0.5))
                                co_await ctx.inc64(a);
                            else if (rng.chance(0.5))
                                co_await ctx.loadAsync(a);
                            else
                                co_await ctx.storeAsync(a);
                        }
                        co_await ctx.pfence();
                        co_await ctx.drain();
                    });

    ArchResult r;
    r.ticks = rt.run();
    for (const auto &v : sys.stats().audit())
        ADD_FAILURE() << backend << ": stats audit: " << v;
    for (std::uint64_t i = 0; i < n; ++i) {
        r.checksum = r.checksum * 1099511628211ULL +
                     sys.memory().read<std::uint64_t>(arr + 8 * i);
    }
    r.peis_total = sys.pmu().peisHost() + sys.pmu().peisMem();
    return r;
}

TEST(BackendRegistry, BuiltinsRegistered)
{
    const std::vector<std::string> names = memoryBackendNames();
    EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
    for (const char *b : kBackends) {
        EXPECT_NE(std::find(names.begin(), names.end(), b), names.end())
            << "builtin backend '" << b << "' not registered";
    }
}

TEST(BackendRegistryDeathTest, UnknownNameFatals)
{
    SystemConfig cfg = fixture::tinyConfig();
    cfg.mem_backend = "nvram";
    EXPECT_DEATH({ System sys(cfg); }, "unknown memory backend 'nvram'");
}

TEST(BackendEquivalence, CapabilitiesMatchKind)
{
    for (const char *b : kBackends) {
        SystemConfig cfg = fixture::tinyConfig();
        cfg.mem_backend = b;
        System sys(cfg);
        EXPECT_EQ(sys.mem().kind(), std::string(b));
        // Only the ddr backend lacks in-memory compute; its PMU must
        // have degraded to host-side-only execution.
        EXPECT_EQ(sys.mem().supportsPim(), std::string(b) != "ddr");
        EXPECT_EQ(sys.pmu().numMemPcus() != 0, sys.mem().supportsPim());
    }
}

TEST(BackendEquivalence, DirectedMixSameResultsDifferentTiming)
{
    const ArchResult hmc = runMixOn("hmc", 7);
    const ArchResult ddr = runMixOn("ddr", 7);
    const ArchResult ideal = runMixOn("ideal", 7);

    EXPECT_EQ(hmc.checksum, ddr.checksum);
    EXPECT_EQ(hmc.checksum, ideal.checksum);
    EXPECT_EQ(hmc.peis_total, ddr.peis_total);
    EXPECT_EQ(hmc.peis_total, ideal.peis_total);
    EXPECT_GT(hmc.peis_total, 0u);

    // The backends model genuinely different timing; a tie would mean
    // the seam is not actually routing accesses through the backend.
    EXPECT_NE(hmc.ticks, ideal.ticks);
    EXPECT_NE(hmc.ticks, ddr.ticks);
}

/**
 * The full generated op set on every backend: simfuzz cases pinned
 * per backend must stay clean against the golden model.  Each case
 * runs all four execution modes, so this also covers the PimOnly ->
 * host degrade path on the non-PIM ddr backend.
 */
TEST(BackendEquivalence, FuzzOpSetGoldenEquivalence)
{
    for (const char *b : kBackends) {
        fuzz::FuzzOptions opt;
        opt.backend = b;
        for (std::uint64_t i = 0; i < 6; ++i) {
            fuzz::FuzzCaseId id;
            id.seed = fuzz::caseSeed(opt.master_seed, i);
            id.config = static_cast<unsigned>(i % opt.num_configs);
            const fuzz::FuzzCaseResult r =
                fuzz::runFuzzCase(id, opt, nullptr);
            EXPECT_TRUE(r.ok()) << b << ": " << r.summary();
        }
    }
}

} // namespace
} // namespace pei
